// Command traceanalyze analyses transaction behaviour from two sources.
//
// With a positional argument it consumes the per-transaction JSONL event
// trace written by `hastm-bench -trace` and reports abort-cause breakdowns,
// retry-depth histograms and per-cell commit/abort summaries — the
// analyses the paper's Figs 5–9 discussion performs on abort behaviour.
// Malformed input is a hard error (non-zero exit), so CI can use the tool
// to validate trace artifacts.
//
// Without a positional argument it reproduces the paper's §7.2 workload
// analysis (Fig 13): the fraction of loads and the degree of
// intra-critical-section cache reuse for the twelve analysed Java/pthreads
// workloads, plus (with -structures) the same measurement for this
// repository's transactional data structures.
//
// Usage:
//
//	traceanalyze trace.jsonl     # analyse a hastm-bench -trace file
//	traceanalyze -strict t.jsonl # also fail unless every begin is terminated
//	                             # and every irrevocable attempt commits
//	traceanalyze -top 5 t.jsonl  # show the 5 most abort-heavy cells
//	traceanalyze                 # the 12 workload profiles (Fig 13)
//	traceanalyze -structures     # also measure hashtable/BST/B-tree
//	traceanalyze -sections 1000  # more sections per workload
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hastm.dev/hastm/internal/mem"
	"hastm.dev/hastm/internal/telemetry"
	"hastm.dev/hastm/internal/workloads"
	"hastm.dev/hastm/internal/workloads/traces"
)

func main() {
	var (
		sections   = flag.Int("sections", 400, "critical sections generated per workload (Fig 13 mode)")
		seed       = flag.Uint64("seed", 1, "deterministic seed (Fig 13 mode)")
		structures = flag.Bool("structures", false, "also measure the TM data structures (Fig 13 mode)")
		top        = flag.Int("top", 10, "cells shown in the per-cell summary (JSONL mode; 0 = all)")
		strict     = flag.Bool("strict", false, "JSONL mode: assert trace completeness (every begin reaches a terminal event)")
	)
	flag.Parse()

	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "traceanalyze: at most one trace file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		if err := analyzeJSONL(flag.Arg(0), *top, *strict); err != nil {
			fmt.Fprintf(os.Stderr, "traceanalyze: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("workload analysis (Fig 13): memory operations inside critical sections")
	fmt.Printf("%-14s %10s %14s %15s\n", "workload", "% loads", "load reuse %", "store reuse %")
	for _, r := range traces.AnalyzeAll(*sections, *seed) {
		printResult(r)
	}

	if !*structures {
		return
	}
	fmt.Println("\ntransactional data structures (intra-transaction reuse, §7.3):")
	fmt.Printf("%-14s %10s %14s %15s\n", "structure", "% loads", "load reuse %", "store reuse %")
	m := mem.New()
	h := workloads.NewHashtable(m, 1024)
	h.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(h, m, 1000, 20, *seed))
	b := workloads.NewBST(m, 512)
	b.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(b, m, 1000, 20, *seed))
	t := workloads.NewBTree(m, 512)
	t.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(t, m, 1000, 20, *seed))
}

func printResult(r traces.Result) {
	fmt.Printf("%-14s %10.1f %14.1f %15.1f\n",
		r.Name, 100*r.LoadFraction, 100*r.LoadReuse, 100*r.StoreReuse)
}

// cellStat accumulates one experiment cell's transaction outcomes.
type cellStat struct {
	begins, commits, aborts, retries, fallbacks, modes, errors uint64
	sheds, serializes                                          uint64
}

// strictChecker verifies trace completeness: every begin must reach
// exactly one terminal event (commit, abort, retry, error — or a
// fallback, which may also arrive with no begin pending when a hybrid
// scheme falls back after exhausting hardware attempts). State is
// tracked per (cell, core): a core runs one attempt at a time, and
// cells are independent machines.
//
// It also checks the irrevocability contract: an attempt marked by an
// irrevocable event holds the global token and has no rollback path, so
// its only legal terminals are commit and body error — an abort or a
// retry-wait afterwards means the engine revoked the irrevocable.
type strictChecker struct {
	// pending maps a (cell, core) stream to the line number of its
	// unterminated begin (0 = none pending).
	pending map[string]int
	// irrevocable maps a stream to the line of the irrevocable marker of
	// its in-flight attempt (0 = the attempt is revocable).
	irrevocable map[string]int
	violations  []string
}

func streamKey(cell string, core int) string { return fmt.Sprintf("%s\x00%d", cell, core) }

func (s *strictChecker) observe(ev *telemetry.TxnEvent, path string, lineNo int) {
	key := streamKey(ev.Cell, ev.Core)
	switch ev.Kind {
	case telemetry.EvBegin:
		if at := s.pending[key]; at != 0 {
			s.violations = append(s.violations,
				fmt.Sprintf("%s:%d: begin while the begin at line %d is unterminated (cell %q, core %d)",
					path, lineNo, at, ev.Cell, ev.Core))
		}
		s.pending[key] = lineNo
	case telemetry.EvCommit, telemetry.EvAbort, telemetry.EvRetry,
		telemetry.EvError, telemetry.EvWriterRestart:
		// EvWriterRestart terminates an MVCC snapshot attempt exactly like a
		// retry-wait terminates one: the attempt re-executes (pinned to
		// writer mode), so a begin must be pending — and an irrevocable
		// attempt can never restart (every other core is drained, so its
		// snapshot cannot go stale).
		if s.pending[key] == 0 {
			s.violations = append(s.violations,
				fmt.Sprintf("%s:%d: %s with no begin pending (cell %q, core %d)",
					path, lineNo, ev.Kind, ev.Cell, ev.Core))
		}
		if at := s.irrevocable[key]; at != 0 &&
			(ev.Kind == telemetry.EvAbort || ev.Kind == telemetry.EvRetry ||
				ev.Kind == telemetry.EvWriterRestart) {
			s.violations = append(s.violations,
				fmt.Sprintf("%s:%d: %s of the irrevocable attempt marked at line %d (cell %q, core %d)",
					path, lineNo, ev.Kind, at, ev.Cell, ev.Core))
		}
		s.pending[key] = 0
		s.irrevocable[key] = 0
	case telemetry.EvFallback:
		// Terminates a pending hardware attempt if there is one; an
		// attempts-exhausted fallback legitimately arrives without one.
		s.pending[key] = 0
	case telemetry.EvIrrevocable:
		if s.pending[key] == 0 {
			s.violations = append(s.violations,
				fmt.Sprintf("%s:%d: irrevocable marker with no begin pending (cell %q, core %d)",
					path, lineNo, ev.Cell, ev.Core))
		}
		s.irrevocable[key] = lineNo
	case telemetry.EvShed:
		// A shed request is turned away by admission control before any
		// attempt starts: it stands alone — no begin precedes it and no
		// fake abort follows (mirroring the body-error rule). A pending
		// begin here means the service shed mid-attempt, which it never
		// does.
		if at := s.pending[key]; at != 0 {
			s.violations = append(s.violations,
				fmt.Sprintf("%s:%d: shed while the begin at line %d is unterminated (cell %q, core %d)",
					path, lineNo, at, ev.Cell, ev.Core))
		}
	case telemetry.EvMode, telemetry.EvEscalate, telemetry.EvSerialize,
		telemetry.EvUpgrade, telemetry.EvDegrade:
		// Informational; not part of the attempt life-cycle. (Escalation
		// is announced before the irrevocable attempt begins; serialize
		// announces that admission control forced the next transaction
		// through the irrevocable ladder — its begin follows; upgrade
		// announces an MVCC snapshot attempt switching to writer mode
		// mid-attempt — its own commit or abort still terminates it;
		// degrade announces a service core's graceful-degradation ladder
		// transition between requests — the shed requests themselves appear
		// as shed events.)
	}
}

func (s *strictChecker) finish(path string) {
	type dangling struct {
		key  string
		line int
	}
	var left []dangling
	for key, at := range s.pending {
		if at != 0 {
			left = append(left, dangling{key, at})
		}
	}
	sort.Slice(left, func(i, j int) bool { return left[i].line < left[j].line })
	for _, d := range left {
		cell, core, _ := strings.Cut(d.key, "\x00")
		s.violations = append(s.violations,
			fmt.Sprintf("%s:%d: begin never terminated (cell %q, core %s)", path, d.line, cell, core))
	}
}

// analyzeJSONL reads a hastm-bench -trace file and prints the abort-cause
// breakdown, the retry-depth histogram and per-cell summaries. Any line
// that is not a valid transaction event is an error. With strict set, it
// additionally runs the trace through a per-(cell, core) begin/terminal
// state machine and fails on any incomplete or unpaired attempt.
func analyzeJSONL(path string, top int, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		total      uint64
		kinds      = map[string]uint64{}
		abortCause = map[string]uint64{}
		// retryDepth[r] counts transactions that committed on attempt r.
		retryDepth = map[int]uint64{}
		maxDepth   int
		cells      = map[string]*cellStat{}
		cellOrder  []string
		checker    = &strictChecker{pending: map[string]int{}, irrevocable: map[string]int{}}
	)

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev telemetry.TxnEvent
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("%s:%d: malformed event: %v", path, lineNo, err)
		}
		switch ev.Kind {
		case telemetry.EvBegin, telemetry.EvCommit, telemetry.EvAbort,
			telemetry.EvRetry, telemetry.EvFallback, telemetry.EvMode,
			telemetry.EvError, telemetry.EvEscalate, telemetry.EvIrrevocable,
			telemetry.EvShed, telemetry.EvSerialize, telemetry.EvUpgrade,
			telemetry.EvWriterRestart, telemetry.EvDegrade:
		default:
			return fmt.Errorf("%s:%d: unknown event kind %q", path, lineNo, ev.Kind)
		}
		if ev.Retry < 0 {
			return fmt.Errorf("%s:%d: negative retry index %d", path, lineNo, ev.Retry)
		}
		if strict {
			checker.observe(&ev, path, lineNo)
		}

		total++
		kinds[ev.Kind]++
		cs := cells[ev.Cell]
		if cs == nil {
			cs = &cellStat{}
			cells[ev.Cell] = cs
			cellOrder = append(cellOrder, ev.Cell)
		}
		switch ev.Kind {
		case telemetry.EvBegin:
			cs.begins++
		case telemetry.EvCommit:
			cs.commits++
			retryDepth[ev.Retry]++
			if ev.Retry > maxDepth {
				maxDepth = ev.Retry
			}
		case telemetry.EvAbort:
			cs.aborts++
			cause := ev.Cause
			if cause == "" {
				cause = "(unspecified)"
			}
			abortCause[cause]++
		case telemetry.EvRetry:
			cs.retries++
		case telemetry.EvFallback:
			cs.fallbacks++
		case telemetry.EvMode:
			cs.modes++
		case telemetry.EvError:
			cs.errors++
		case telemetry.EvShed:
			cs.sheds++
		case telemetry.EvSerialize:
			cs.serializes++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if total == 0 {
		return fmt.Errorf("%s: no events", path)
	}

	fmt.Printf("%s: %d events across %d cells\n\n", path, total, len(cells))

	fmt.Println("event kinds:")
	for _, k := range []string{telemetry.EvBegin, telemetry.EvCommit, telemetry.EvAbort,
		telemetry.EvRetry, telemetry.EvFallback, telemetry.EvMode, telemetry.EvError,
		telemetry.EvEscalate, telemetry.EvIrrevocable, telemetry.EvShed,
		telemetry.EvSerialize, telemetry.EvUpgrade, telemetry.EvWriterRestart,
		telemetry.EvDegrade} {
		if n := kinds[k]; n > 0 {
			fmt.Printf("  %-10s %8d\n", k, n)
		}
	}

	var aborts uint64
	for _, n := range abortCause {
		aborts += n
	}
	fmt.Println("\nabort causes:")
	if aborts == 0 {
		fmt.Println("  (no aborts)")
	} else {
		causes := make([]string, 0, len(abortCause))
		for c := range abortCause {
			causes = append(causes, c)
		}
		sort.Slice(causes, func(i, j int) bool {
			if abortCause[causes[i]] != abortCause[causes[j]] {
				return abortCause[causes[i]] > abortCause[causes[j]]
			}
			return causes[i] < causes[j]
		})
		for _, c := range causes {
			n := abortCause[c]
			fmt.Printf("  %-20s %8d  (%5.1f%%)\n", c, n, 100*float64(n)/float64(aborts))
		}
	}

	fmt.Println("\nretry depth at commit (0 = first attempt):")
	var commits uint64
	for _, n := range retryDepth {
		commits += n
	}
	if commits == 0 {
		fmt.Println("  (no commits)")
	}
	for d := 0; commits > 0 && d <= maxDepth; d++ {
		n := retryDepth[d]
		bar := strings.Repeat("#", int(50*float64(n)/float64(commits)+0.5))
		fmt.Printf("  %3d %8d  %s\n", d, n, bar)
	}

	fmt.Println("\nper-cell summary (most aborts first):")
	sort.SliceStable(cellOrder, func(i, j int) bool {
		return cells[cellOrder[i]].aborts > cells[cellOrder[j]].aborts
	})
	shown := cellOrder
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	fmt.Printf("  %-36s %8s %8s %8s %9s %6s\n", "cell", "commits", "aborts", "retries", "fallbacks", "shed")
	for _, name := range shown {
		cs := cells[name]
		fmt.Printf("  %-36s %8d %8d %8d %9d %6d\n", name, cs.commits, cs.aborts, cs.retries, cs.fallbacks, cs.sheds)
	}
	if len(shown) < len(cellOrder) {
		fmt.Printf("  ... %d more cells (-top 0 for all)\n", len(cellOrder)-len(shown))
	}

	if strict {
		checker.finish(path)
		if n := len(checker.violations); n > 0 {
			fmt.Println("\nstrict: trace completeness violations:")
			for _, v := range checker.violations {
				fmt.Printf("  %s\n", v)
			}
			return fmt.Errorf("strict: %d trace completeness violation(s)", n)
		}
		fmt.Println("\nstrict: ok — every begin reached a terminal event")
	}
	return nil
}
