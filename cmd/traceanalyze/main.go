// Command traceanalyze reproduces the paper's §7.2 workload analysis
// (Fig 13): the fraction of loads and the degree of intra-critical-section
// cache reuse for the twelve analysed Java/pthreads workloads, plus the
// same measurement for this repository's transactional data structures
// (backing the §7.3 reuse claims: hashtable < 3%, BST ~38%, B-tree ~68%).
//
// Usage:
//
//	traceanalyze                 # the 12 workload profiles
//	traceanalyze -structures     # also measure hashtable/BST/B-tree
//	traceanalyze -sections 1000  # more sections per workload
package main

import (
	"flag"
	"fmt"

	"hastm.dev/hastm/internal/mem"
	"hastm.dev/hastm/internal/workloads"
	"hastm.dev/hastm/internal/workloads/traces"
)

func main() {
	var (
		sections   = flag.Int("sections", 400, "critical sections generated per workload")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		structures = flag.Bool("structures", false, "also measure the TM data structures")
	)
	flag.Parse()

	fmt.Println("workload analysis (Fig 13): memory operations inside critical sections")
	fmt.Printf("%-14s %10s %14s %15s\n", "workload", "% loads", "load reuse %", "store reuse %")
	for _, r := range traces.AnalyzeAll(*sections, *seed) {
		printResult(r)
	}

	if !*structures {
		return
	}
	fmt.Println("\ntransactional data structures (intra-transaction reuse, §7.3):")
	fmt.Printf("%-14s %10s %14s %15s\n", "structure", "% loads", "load reuse %", "store reuse %")
	m := mem.New()
	h := workloads.NewHashtable(m, 1024)
	h.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(h, m, 1000, 20, *seed))
	b := workloads.NewBST(m, 512)
	b.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(b, m, 1000, 20, *seed))
	t := workloads.NewBTree(m, 512)
	t.Populate(m, workloads.NewRand(*seed))
	printResult(traces.MeasureStructureReuse(t, m, 1000, 20, *seed))
}

func printResult(r traces.Result) {
	fmt.Printf("%-14s %10.1f %14.1f %15.1f\n",
		r.Name, 100*r.LoadFraction, 100*r.LoadReuse, 100*r.StoreReuse)
}
