package hastm_test

// Tests of the public facade: everything a downstream user touches,
// exercised only through the exported API.

import (
	"errors"
	"sync"
	"testing"

	"hastm.dev/hastm"
)

func TestPublicQuickstartFlow(t *testing.T) {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(2))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
	ctr := machine.Mem.Alloc(64, 64)

	prog := func(c *hastm.Core) {
		th := sys.Thread(c)
		for i := 0; i < 50; i++ {
			if err := th.Atomic(func(tx hastm.Txn) error {
				tx.Store(ctr, tx.Load(ctr)+1)
				return nil
			}); err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	}
	wall := machine.Run(prog, prog)
	if got := machine.Mem.Load(ctr); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if wall == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if machine.Stats.Commits() != 100 {
		t.Fatalf("commits = %d", machine.Stats.Commits())
	}
}

func TestPublicEverySchemeRuns(t *testing.T) {
	builders := map[string]func(*hastm.Machine) hastm.System{
		"hastm": func(m *hastm.Machine) hastm.System {
			return hastm.New(m, hastm.DefaultConfig(hastm.LineGranularity))
		},
		"hastm-cautious": func(m *hastm.Machine) hastm.System {
			return hastm.NewCautious(m, hastm.DefaultConfig(hastm.LineGranularity))
		},
		"hastm-noreuse": func(m *hastm.Machine) hastm.System {
			return hastm.NewNoReuse(m, hastm.DefaultConfig(hastm.LineGranularity))
		},
		"naive": func(m *hastm.Machine) hastm.System {
			return hastm.NewNaiveAggressive(m, hastm.DefaultConfig(hastm.LineGranularity))
		},
		"stm": func(m *hastm.Machine) hastm.System {
			return hastm.NewSTM(m, hastm.TMConfig{Granularity: hastm.LineGranularity})
		},
		"hytm": func(m *hastm.Machine) hastm.System {
			return hastm.NewHyTM(m, hastm.TMConfig{Granularity: hastm.LineGranularity}, 4)
		},
		"htm":  func(m *hastm.Machine) hastm.System { return hastm.NewHTM(m) },
		"lock": func(m *hastm.Machine) hastm.System { return hastm.NewLock(m) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			machine := hastm.NewMachine(hastm.DefaultMachineConfig(2))
			sys := build(machine)
			if sys.Name() == "" {
				t.Error("scheme has no name")
			}
			a := machine.Mem.Alloc(64, 64)
			b := machine.Mem.Alloc(64, 64)
			machine.Mem.Store(a, 500)
			prog := func(c *hastm.Core) {
				th := sys.Thread(c)
				for i := 0; i < 25; i++ {
					if err := th.Atomic(func(tx hastm.Txn) error {
						va := tx.Load(a)
						if va == 0 {
							return nil
						}
						tx.Store(a, va-1)
						tx.Store(b, tx.Load(b)+1)
						return nil
					}); err != nil {
						t.Errorf("Atomic: %v", err)
					}
				}
			}
			machine.Run(prog, prog)
			if sum := machine.Mem.Load(a) + machine.Mem.Load(b); sum != 500 {
				t.Fatalf("invariant violated under %s: sum = %d", name, sum)
			}
		})
	}
}

// TestPublicNativeBackend exercises the host-native TL2 backend through
// the facade: real goroutines moving value between two words, the same
// atomic-block programming model, no simulator anywhere.
func TestPublicNativeBackend(t *testing.T) {
	const goroutines = 4
	m := hastm.NewMemory()
	a := m.Alloc(64, 64)
	b := m.Alloc(64, 64)
	m.Store(a, 500)
	sys := hastm.NewNative(m, hastm.NativeConfig{Threads: goroutines})
	if sys.Name() == "" {
		t.Error("native backend has no name")
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.Thread(id)
			for i := 0; i < 50; i++ {
				if err := th.Atomic(func(tx hastm.Txn) error {
					va := tx.Load(a)
					if va == 0 {
						return nil
					}
					tx.Store(a, va-1)
					tx.Store(b, tx.Load(b)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if sum := m.Load(a) + m.Load(b); sum != 500 {
		t.Fatalf("invariant violated on native backend: sum = %d", sum)
	}
	if got := m.Load(b); got != 200 {
		t.Fatalf("b = %d, want 200 (4 goroutines x 50 decrements)", got)
	}
}

func TestPublicObjectGranularity(t *testing.T) {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.ObjectGranularity))
	obj := hastm.AllocObject(machine, 16)
	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		if err := th.Atomic(func(tx hastm.Txn) error {
			tx.StoreObj(obj, 8, 11)
			tx.StoreObj(obj, 16, 22)
			if tx.LoadObj(obj, 8) != 11 {
				t.Error("read-after-write failed")
			}
			return nil
		}); err != nil {
			t.Errorf("Atomic: %v", err)
		}
	})
	if machine.Mem.Load(obj+8) != 11 || machine.Mem.Load(obj+16) != 22 {
		t.Fatal("object fields not committed")
	}
}

func TestPublicUserAbort(t *testing.T) {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
	addr := machine.Mem.Alloc(64, 64)
	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		err := th.Atomic(func(tx hastm.Txn) error {
			tx.Store(addr, 9)
			tx.Abort()
			return nil
		})
		if !errors.Is(err, hastm.ErrUserAbort) {
			t.Errorf("err = %v, want ErrUserAbort", err)
		}
	})
	if machine.Mem.Load(addr) != 0 {
		t.Fatal("abort did not roll back")
	}
}

func TestPublicGCPause(t *testing.T) {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
	addr := machine.Mem.Alloc(64, 64)
	inspected := false
	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		if err := th.Atomic(func(tx hastm.Txn) error {
			tx.Store(addr, 5)
			hastm.GCPause(th, func(reads, writes []hastm.RecEntry, undo []hastm.UndoEntry) {
				inspected = len(writes) == 1 && len(undo) == 1
			})
			return nil
		}); err != nil {
			t.Errorf("Atomic: %v", err)
		}
	})
	if !inspected {
		t.Fatal("GC pause did not expose the logs")
	}
	if machine.Mem.Load(addr) != 5 {
		t.Fatal("transaction lost its write across the pause")
	}
}

func TestPublicGCPauseRejectsHTM(t *testing.T) {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.NewHTM(machine)
	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		_ = th.Atomic(func(tx hastm.Txn) error {
			defer func() {
				if recover() == nil {
					t.Error("GCPause on a hardware transaction must panic (restricted semantics)")
				}
			}()
			hastm.GCPause(th, nil)
			return nil
		})
	})
}

// TestPublicDefaultISA verifies the Section 3.3 story end-to-end through
// the public API: the same HASTM code runs correctly on a machine that
// implements only the default (no-op) behaviour of the new instructions.
func TestPublicDefaultISA(t *testing.T) {
	cfg := hastm.DefaultMachineConfig(2)
	cfg.DefaultISA = true
	machine := hastm.NewMachine(cfg)
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
	ctr := machine.Mem.Alloc(64, 64)
	prog := func(c *hastm.Core) {
		th := sys.Thread(c)
		for i := 0; i < 30; i++ {
			if err := th.Atomic(func(tx hastm.Txn) error {
				tx.Store(ctr, tx.Load(ctr)+1)
				return nil
			}); err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	}
	machine.Run(prog, prog)
	if got := machine.Mem.Load(ctr); got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
}
