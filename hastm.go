// Package hastm is a library-quality reproduction of "Architectural
// Support for Software Transactional Memory" (Saha, Adl-Tabatabai,
// Jacobson — MICRO 2006): hardware-accelerated software transactional
// memory, together with every substrate the paper depends on.
//
// The package bundles:
//
//   - a deterministic, cycle-ordered multi-core machine simulator with
//     per-core L1s, a shared inclusive L2, MESI-style coherence, and the
//     paper's proposed ISA extension — per-thread mark bits on 16-byte
//     cache sub-blocks plus a saturating mark counter (§3);
//   - the base McRT-style STM (§4): eager versioning with an undo log,
//     two-phase locking for writes, optimistic versioned reads, closed
//     nesting with partial rollback, retry/orElse, GC-pause suspension;
//   - HASTM itself (§5, §6): mark-bit read-barrier filtering, mark-counter
//     validation, and the aggressive mode that elides read logging;
//   - the baselines the paper evaluates against: an eager best-effort HTM,
//     HyTM (hardware first, software fallback, Fig 14 barriers), the
//     naive always-aggressive strawman of Figs 21/22, a coarse lock, and
//     plain sequential execution;
//   - the evaluation workloads (hashtable, BST, B-tree, the Fig 15
//     microbenchmark, the Fig 13 trace analysis) and a harness that
//     regenerates every figure of §7.
//
// # Quick start
//
//	machine := hastm.NewMachine(hastm.DefaultMachineConfig(2))
//	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
//	acct := machine.Mem.Alloc(64, 64)
//	machine.Run(
//		func(c *hastm.Core) {
//			th := sys.Thread(c)
//			_ = th.Atomic(func(tx hastm.Txn) error {
//				tx.Store(acct, tx.Load(acct)+100)
//				return nil
//			})
//		},
//		nil,
//	)
//
// Everything runs in simulated time: Machine.Run returns the wall-clock
// cycle count and Machine.Stats holds the per-category breakdown.
package hastm

import (
	"hastm.dev/hastm/internal/core"
	"hastm.dev/hastm/internal/htm"
	"hastm.dev/hastm/internal/locksync"
	"hastm.dev/hastm/internal/mem"
	"hastm.dev/hastm/internal/native"
	"hastm.dev/hastm/internal/sim"
	"hastm.dev/hastm/internal/stm"
	"hastm.dev/hastm/internal/tm"
)

// Machine is the simulated multi-core system. Populate data structures
// through Machine.Mem (zero simulated cost) before calling Run.
type Machine = sim.Machine

// Core is one core's architectural interface, passed to each program.
type Core = sim.Ctx

// Program is the code one core runs.
type Program = sim.Program

// MachineConfig configures a Machine (cores, caches, latencies, the
// Section 3.3 default-ISA mode, interference knobs).
type MachineConfig = sim.Config

// Latencies is the additive cycle-cost model.
type Latencies = sim.Latencies

// System is a concurrency-control scheme bound to a machine; Thread binds
// it to a core.
type System = tm.System

// Thread is a core's handle for running atomic blocks.
type Thread = tm.Thread

// Txn is the transactional access interface inside an atomic block.
type Txn = tm.Txn

// Config configures a HASTM instance.
type Config = core.Config

// TMConfig carries the options shared by the software TMs.
type TMConfig = tm.Config

// Granularity selects object- or cache-line-granularity conflict
// detection.
type Granularity = tm.Granularity

// Conflict-detection granularities (§4).
const (
	ObjectGranularity = tm.ObjectGranularity
	LineGranularity   = tm.LineGranularity
)

// Contention-management policies (§2).
const (
	PoliteBackoff = tm.PoliteBackoff
	AbortSelf     = tm.AbortSelf
	Wait          = tm.Wait
)

// Mode policies for HASTM's aggressive/cautious controller (§6).
const (
	CautiousOnly     = core.CautiousOnly
	Watermark        = core.Watermark
	AlwaysAggressive = core.AlwaysAggressive
)

// ErrUserAbort is returned by Thread.Atomic when the body called Abort.
var ErrUserAbort = tm.ErrUserAbort

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) *Machine { return sim.New(cfg) }

// DefaultMachineConfig returns the paper-style machine: 32 KB 8-way L1s
// and a shared 512 KB 8-way inclusive L2.
func DefaultMachineConfig(cores int) MachineConfig { return sim.DefaultConfig(cores) }

// DefaultLatencies returns the standard timing model.
func DefaultLatencies() Latencies { return sim.DefaultLatencies() }

// DefaultConfig returns the paper's standard HASTM configuration.
func DefaultConfig(g Granularity) Config { return core.DefaultConfig(g) }

// New creates a HASTM system (the paper's contribution) on machine.
func New(machine *Machine, cfg Config) System { return core.New(machine, cfg) }

// NewCautious returns the HASTM-Cautious ablation (no read-log
// elimination).
func NewCautious(machine *Machine, cfg Config) System { return core.NewCautious(machine, cfg) }

// NewNoReuse returns the HASTM-NoReuse ablation (no barrier filtering).
func NewNoReuse(machine *Machine, cfg Config) System { return core.NewNoReuse(machine, cfg) }

// NewNaiveAggressive returns the Fig 21/22 strawman that always tries
// aggressive mode first, like an HTM-first hybrid.
func NewNaiveAggressive(machine *Machine, cfg Config) System {
	return core.NewNaiveAggressive(machine, cfg)
}

// NewSTM creates the base software TM of §4.
func NewSTM(machine *Machine, cfg TMConfig) System { return stm.New(machine, cfg) }

// NewHyTM creates the hybrid TM baseline: hardware transactions with the
// Fig 14 barriers, software fallback after maxAttempts hardware aborts
// (<= 0 means the default of 4).
func NewHyTM(machine *Machine, cfg TMConfig, maxAttempts int) System {
	return htm.NewHyTM(machine, cfg, maxAttempts)
}

// NewHTM creates the pure best-effort hardware TM baseline.
func NewHTM(machine *Machine) System { return htm.NewHTM(machine) }

// NewLock creates the coarse-grained spinlock baseline.
func NewLock(machine *Machine) System { return locksync.NewLock(machine) }

// NewSequential creates the unsynchronised sequential baseline (single
// core only).
func NewSequential(machine *Machine) System { return locksync.NewSeq(machine) }

// Memory is the flat word-addressed memory shared by the simulator and
// the native backend (Machine.Mem is one of these).
type Memory = mem.Memory

// Native is the host-native TL2 backend: the same tm.Txn programming model
// — Load/Store, closed nesting with partial rollback, retry/orElse,
// explicit abort, the irrevocable escalation ladder — executed by real
// goroutines on real memory with a TL2 global version clock and
// per-stripe versioned write-locks, instead of simulated cores. Nothing
// about it is deterministic or cycle-accounted; it exists to cross-check
// the simulator's STM semantics (the differential conformance suite) and
// to measure real host throughput.
type Native = native.System

// NativeConfig configures the native backend (threads, stripe count,
// arena size, and the shared TM options — contention policy and the
// escalation ladder's retry budget).
type NativeConfig = native.Config

// NewMemory builds a standalone memory for the native backend. Build and
// populate data structures through it (zero concurrency) BEFORE calling
// NewNative: the system preallocates its transactional-allocation arena at
// creation so the page table never grows during a run.
func NewMemory() *Memory { return mem.New() }

// NewNative creates the native TL2 backend on m. Thread(id) — one id per
// goroutine, 0 <= id < cfg.Threads — hands out the transaction handles.
func NewNative(m *Memory, cfg NativeConfig) *Native { return native.New(m, cfg) }

// AllocObject allocates a transactional object (header record + payload)
// for object-granularity conflict detection and returns its base address.
func AllocObject(machine *Machine, payloadBytes uint64) uint64 {
	return stm.AllocObject(machine.Mem, payloadBytes)
}

// RecEntry is one read- or write-set entry exposed to log inspectors.
type RecEntry = stm.RecEntry

// UndoEntry is one undo-log entry exposed to log inspectors.
type UndoEntry = stm.UndoEntry

// GCPause suspends the thread's in-flight transaction so a collector or
// tool can inspect (and patch) its logs, then resumes WITHOUT aborting —
// the §5 language-environment integration that pure HTMs cannot offer.
// The hardware cost is a ring transition: the mark bits are discarded, so
// the transaction merely falls back to full software validation. The
// thread must belong to a software TM (STM or HASTM) and be inside Atomic.
func GCPause(th Thread, inspect func(reads, writes []RecEntry, undo []UndoEntry)) {
	st, ok := th.(*stm.Thread)
	if !ok {
		panic("hastm: GCPause requires a software-TM thread (STM or HASTM)")
	}
	st.GCPause(inspect)
}
