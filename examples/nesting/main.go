// Nesting: the rich transaction semantics the paper's §2 demands — closed
// nesting with partial rollback, and composable blocking with retry and
// orElse — all running accelerated under HASTM.
//
// Part 1 books a two-leg trip: each leg is a nested transaction; when the
// second leg fails, only that leg rolls back and the code books a
// different carrier, all within one outer atomic block.
//
// Part 2 is a producer/consumer over two bounded queues composed with
// orElse: the consumer blocks (retry) until either queue has an element,
// without ever polling application state explicitly.
//
//	go run ./examples/nesting
package main

import (
	"errors"
	"fmt"

	"hastm.dev/hastm"
)

var errSoldOut = errors.New("sold out")

func partOneNesting() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))

	// Seats available per carrier: flights[0] is sold out.
	flightA := machine.Mem.Alloc(64, 64) // 0 seats
	flightB := machine.Mem.Alloc(64, 64)
	machine.Mem.Store(flightB, 5)
	hotel := machine.Mem.Alloc(64, 64)
	machine.Mem.Store(hotel, 3)

	book := func(tx hastm.Txn, what uint64) func(hastm.Txn) error {
		return func(inner hastm.Txn) error {
			seats := inner.Load(what)
			if seats == 0 {
				return errSoldOut
			}
			inner.Store(what, seats-1)
			return nil
		}
	}

	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		err := th.Atomic(func(tx hastm.Txn) error {
			// Leg 1: the hotel.
			if err := tx.Atomic(book(tx, hotel)); err != nil {
				return err
			}
			// Leg 2: try carrier A; on failure only the nested transaction
			// rolled back — the hotel booking above is untouched.
			if err := tx.Atomic(book(tx, flightA)); err != nil {
				fmt.Printf("  carrier A: %v -> partial rollback, trying carrier B\n", err)
				if err := tx.Atomic(book(tx, flightB)); err != nil {
					return err // would roll back the hotel too
				}
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
	})

	fmt.Printf("  booked: hotel seats %d->%d, carrier B seats %d->%d\n",
		3, machine.Mem.Load(hotel), 5, machine.Mem.Load(flightB))
}

func partTwoOrElse() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(2))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))

	// Two one-slot mailboxes (0 = empty) and an output cell.
	boxA := machine.Mem.Alloc(64, 64)
	boxB := machine.Mem.Alloc(64, 64)
	out := machine.Mem.Alloc(64, 64)

	take := func(box uint64) func(hastm.Txn) error {
		return func(tx hastm.Txn) error {
			v := tx.Load(box)
			if v == 0 {
				tx.Retry() // block until this mailbox changes
			}
			tx.Store(box, 0)
			tx.Store(out, v)
			return nil
		}
	}

	consumer := func(c *hastm.Core) {
		th := sys.Thread(c)
		// Composable blocking: wait for a message in EITHER mailbox.
		err := th.Atomic(func(tx hastm.Txn) error {
			return tx.OrElse(take(boxA), take(boxB))
		})
		if err != nil {
			panic(err)
		}
	}
	producer := func(c *hastm.Core) {
		th := sys.Thread(c)
		c.Exec(20000) // let the consumer block first
		if err := th.Atomic(func(tx hastm.Txn) error {
			tx.Store(boxB, 42) // deliver to the SECOND mailbox
			return nil
		}); err != nil {
			panic(err)
		}
	}
	machine.Run(consumer, producer)

	fmt.Printf("  consumer woke on mailbox B and received %d\n", machine.Mem.Load(out))
}

func main() {
	fmt.Println("closed nesting with partial rollback:")
	partOneNesting()
	fmt.Println("retry/orElse composition:")
	partTwoOrElse()
}
