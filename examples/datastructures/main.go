// Datastructures: one concurrent data structure, every concurrency-control
// scheme.
//
// A sorted linked-list set (the classic TM demonstration structure) is
// implemented once against the transactional API and then run, unchanged,
// under the coarse lock, the base STM, HASTM and HyTM on four cores. The
// example prints each scheme's simulated execution time relative to the
// lock baseline — a miniature of the paper's Figures 16 and 18.
//
//	go run ./examples/datastructures
package main

import (
	"fmt"

	"hastm.dev/hastm"
)

// list is a sorted singly linked set of uint64 keys in simulated memory.
// Node layout: +0 key, +8 next.
type list struct {
	head uint64 // address of the head pointer cell
}

func newList(m *hastm.Machine) *list {
	return &list{head: m.Mem.Alloc(64, 64)}
}

// newNode allocates a node before the run (direct, zero cost).
func newNode(m *hastm.Machine, key uint64) uint64 {
	n := m.Mem.Alloc(16, 64) // one node per line: no false conflicts
	m.Mem.Store(n, key)
	return n
}

// newNodeTx allocates a node inside a transaction: allocation is an
// architectural step and initialisation uses StoreInit (the object is
// private until the final Store publishes it).
func newNodeTx(tx hastm.Txn, key uint64) uint64 {
	n := tx.Alloc(16, 64)
	tx.StoreInit(n, key)
	return n
}

// insert adds key, keeping the list sorted; returns false if present.
func (l *list) insert(tx hastm.Txn, key uint64) bool {
	prevCell := l.head
	cur := tx.Load(prevCell)
	for cur != 0 {
		tx.Exec(3)
		k := tx.Load(cur)
		if k == key {
			return false
		}
		if k > key {
			break
		}
		prevCell = cur + 8
		cur = tx.Load(prevCell)
	}
	n := newNodeTx(tx, key)
	tx.StoreInit(n+8, cur) // still private: init without barriers
	tx.Store(prevCell, n)  // publish
	return true
}

// contains reports whether key is in the set.
func (l *list) contains(tx hastm.Txn, key uint64) bool {
	cur := tx.Load(l.head)
	for cur != 0 {
		tx.Exec(3)
		k := tx.Load(cur)
		if k == key {
			return true
		}
		if k > key {
			return false
		}
		cur = tx.Load(cur + 8)
	}
	return false
}

// remove deletes key; returns false if absent.
func (l *list) remove(tx hastm.Txn, key uint64) bool {
	prevCell := l.head
	cur := tx.Load(prevCell)
	for cur != 0 {
		tx.Exec(3)
		k := tx.Load(cur)
		if k == key {
			tx.Store(prevCell, tx.Load(cur+8))
			return true
		}
		if k > key {
			return false
		}
		prevCell = cur + 8
		cur = tx.Load(prevCell)
	}
	return false
}

const (
	coresN   = 4
	opsEach  = 150
	keySpace = 96
)

func runScheme(name string, build func(*hastm.Machine) hastm.System) uint64 {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(coresN))
	sys := build(machine)
	l := newList(machine)
	// Pre-populate the even keys directly (ascending appends keep the
	// list sorted), matching the paper's populated-before-run structures.
	tail := l.head
	for k := uint64(0); k < keySpace; k += 2 {
		n := newNode(machine, k)
		machine.Mem.Store(tail, n)
		tail = n + 8
	}

	progs := make([]hastm.Program, coresN)
	for i := range progs {
		progs[i] = func(c *hastm.Core) {
			th := sys.Thread(c)
			rng := uint64(c.ID())*0x9e3779b9 + 7
			next := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for op := 0; op < opsEach; op++ {
				key := next(keySpace)
				kind := next(10)
				err := th.Atomic(func(tx hastm.Txn) error {
					switch {
					case kind < 8: // 80% lookups, as in the paper's mix
						l.contains(tx, key)
					case kind == 8:
						l.insert(tx, key)
					default:
						l.remove(tx, key)
					}
					return nil
				})
				if err != nil {
					panic(fmt.Sprintf("%s: %v", name, err))
				}
			}
		}
	}
	wall := machine.Run(progs...)
	fmt.Printf("  %-8s %10d cycles  (commits %4d, aborts %3d)\n",
		name, wall, machine.Stats.Commits(), machine.Stats.TotalAborts())
	return wall
}

func main() {
	fmt.Printf("sorted-list set, %d cores x %d ops, 20%% updates:\n", coresN, opsEach)
	lock := runScheme("lock", func(m *hastm.Machine) hastm.System { return hastm.NewLock(m) })
	stm := runScheme("stm", func(m *hastm.Machine) hastm.System {
		return hastm.NewSTM(m, hastm.TMConfig{Granularity: hastm.LineGranularity, ValidateEvery: 64})
	})
	ha := runScheme("hastm", func(m *hastm.Machine) hastm.System {
		return hastm.New(m, hastm.DefaultConfig(hastm.LineGranularity))
	})
	hy := runScheme("hytm", func(m *hastm.Machine) hastm.System {
		return hastm.NewHyTM(m, hastm.TMConfig{Granularity: hastm.LineGranularity, ValidateEvery: 64}, 4)
	})

	fmt.Println("\nrelative to the coarse lock:")
	for _, s := range []struct {
		name string
		wall uint64
	}{{"stm", stm}, {"hastm", ha}, {"hytm", hy}} {
		fmt.Printf("  %-8s %.2fx\n", s.name, float64(s.wall)/float64(lock))
	}
}
