// GCPause: language-environment integration (§2, §5).
//
// A garbage collector (or debugger) suspends a transaction mid-flight,
// walks its read set, write set and undo log — the metadata a precise GC
// needs to trace and even MOVE speculatively written objects — and the
// transaction then resumes and commits WITHOUT aborting. The only cost is
// that the ring transition discards the mark bits, so the commit falls
// back to full software validation instead of the mark-counter fast path.
//
// This is the capability that distinguishes HASTM from HTM/HyTM: hardware
// transactions cannot be suspended and inspected; hybrid schemes must drop
// to unaccelerated software. HASTM keeps the transaction, keeps it
// accelerated before and after the pause, and never aborts it.
//
//	go run ./examples/gcpause
package main

import (
	"fmt"

	"hastm.dev/hastm"
)

func main() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	cfg := hastm.DefaultConfig(hastm.LineGranularity)
	cfg.SingleThread = true
	sys := hastm.New(machine, cfg)

	// A little object graph: three "objects", one line each.
	objs := make([]uint64, 3)
	for i := range objs {
		objs[i] = machine.Mem.Alloc(64, 64)
		machine.Mem.Store(objs[i], uint64(100+i))
	}

	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		err := th.Atomic(func(tx hastm.Txn) error {
			// Touch some state: two reads, one speculative write.
			a := tx.Load(objs[0])
			b := tx.Load(objs[1])
			tx.Store(objs[2], a+b)

			// --- GC safepoint -------------------------------------------
			hastm.GCPause(th, func(reads, writes []hastm.RecEntry, undo []hastm.UndoEntry) {
				fmt.Println("GC pause: transaction suspended, logs visible to the collector:")
				fmt.Printf("  read set:  %d records\n", len(reads))
				fmt.Printf("  write set: %d records\n", len(writes))
				for _, u := range undo {
					fmt.Printf("  undo log:  addr %#x old value %d (collector could relocate this object)\n",
						u.Addr, u.Old)
				}
			})
			// ------------------------------------------------------------

			// The transaction continues as if nothing happened.
			tx.Store(objs[2], tx.Load(objs[2])+1)
			return nil
		})
		if err != nil {
			panic(err)
		}
	})

	st := &machine.Stats.Cores[0]
	fmt.Printf("\nafter resume: objs[2] = %d (expected %d)\n",
		machine.Mem.Load(objs[2]), 100+101+1)
	fmt.Printf("commits: %d, aborts: %d  — the pause did NOT abort the transaction\n",
		st.Commits, st.TotalAborts())
	fmt.Printf("validations: %d full / %d fast — the lost mark bits forced one software validation\n",
		st.FullValidations, st.FastValidations)
}
