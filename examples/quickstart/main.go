// Quickstart: concurrent bank transfers under HASTM.
//
// Four simulated cores transfer money between eight accounts inside atomic
// blocks. The invariant (total balance) survives any interleaving, and the
// run prints how the hardware acceleration behaved: how many read barriers
// the mark bits filtered and how many validations the mark counter elided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hastm.dev/hastm"
)

const (
	accounts       = 32
	coresN         = 4
	transfersEach  = 250
	initialBalance = 1000
)

func main() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(coresN))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))

	// Allocate the accounts, one per cache line so transfers conflict only
	// when they really share an account.
	var acct [accounts]uint64
	for i := range acct {
		acct[i] = machine.Mem.Alloc(64, 64)
		machine.Mem.Store(acct[i], initialBalance)
	}

	progs := make([]hastm.Program, coresN)
	for i := range progs {
		progs[i] = func(c *hastm.Core) {
			th := sys.Thread(c)
			rng := uint64(c.ID()*2654435761 + 1)
			next := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for t := 0; t < transfersEach; t++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := next(50) + 1
				err := th.Atomic(func(tx hastm.Txn) error {
					balance := tx.Load(acct[from])
					if balance < amount {
						return nil // insufficient funds; commit a no-op
					}
					tx.Store(acct[from], balance-amount)
					tx.Store(acct[to], tx.Load(acct[to])+amount)
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}
	}

	wall := machine.Run(progs...)

	var total uint64
	for i := range acct {
		total += machine.Mem.Load(acct[i])
	}
	fmt.Printf("quickstart: %d transfers on %d cores in %d simulated cycles\n",
		coresN*transfersEach, coresN, wall)
	fmt.Printf("total balance: %d (expected %d) — invariant %s\n",
		total, accounts*initialBalance, okMark(total == accounts*initialBalance))
	fmt.Printf("commits: %d, aborts: %d\n", machine.Stats.Commits(), machine.Stats.TotalAborts())

	var filtered, fastVal, logSkips uint64
	for i := range machine.Stats.Cores {
		s := &machine.Stats.Cores[i]
		filtered += s.FilteredReads
		fastVal += s.FastValidations
		logSkips += s.ReadLogsSkipped
	}
	fmt.Printf("hardware acceleration: %d filtered read barriers, %d mark-counter validations, %d read-log appends elided\n",
		filtered, fastVal, logSkips)
	fmt.Printf("cycle breakdown: %s\n", machine.Stats)
}

func okMark(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
