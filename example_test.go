package hastm_test

// Runnable godoc examples for the public API.

import (
	"fmt"

	"hastm.dev/hastm"
)

// The canonical flow: build a machine, pick a scheme, run transactions.
func Example() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(2))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))

	counter := machine.Mem.Alloc(64, 64)

	prog := func(c *hastm.Core) {
		th := sys.Thread(c)
		for i := 0; i < 10; i++ {
			_ = th.Atomic(func(tx hastm.Txn) error {
				tx.Store(counter, tx.Load(counter)+1)
				return nil
			})
		}
	}
	machine.Run(prog, prog)

	fmt.Println("counter:", machine.Mem.Load(counter))
	fmt.Println("commits:", machine.Stats.Commits())
	// Output:
	// counter: 20
	// commits: 20
}

// Closed nesting with partial rollback: the failed inner transaction
// rolls back alone; the outer transaction commits.
func Example_nesting() {
	machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
	sys := hastm.New(machine, hastm.DefaultConfig(hastm.LineGranularity))
	a := machine.Mem.Alloc(128, 64)

	machine.Run(func(c *hastm.Core) {
		th := sys.Thread(c)
		_ = th.Atomic(func(tx hastm.Txn) error {
			tx.Store(a, 1)
			_ = tx.Atomic(func(in hastm.Txn) error {
				in.Store(a+64, 99)
				return fmt.Errorf("inner failure")
			})
			return nil
		})
	})
	fmt.Println(machine.Mem.Load(a), machine.Mem.Load(a+64))
	// Output: 1 0
}

// Comparing two schemes on the same workload: simulated cycles are
// deterministic, so the comparison is exact and reproducible.
func Example_comparison() {
	run := func(build func(*hastm.Machine) hastm.System) uint64 {
		machine := hastm.NewMachine(hastm.DefaultMachineConfig(1))
		sys := build(machine)
		data := machine.Mem.Alloc(64, 64)
		return machine.Run(func(c *hastm.Core) {
			th := sys.Thread(c)
			for i := 0; i < 20; i++ {
				_ = th.Atomic(func(tx hastm.Txn) error {
					for j := 0; j < 10; j++ {
						tx.Load(data) // high reuse: HASTM's favourite case
					}
					return nil
				})
			}
		})
	}
	stmCycles := run(func(m *hastm.Machine) hastm.System {
		return hastm.NewSTM(m, hastm.TMConfig{Granularity: hastm.LineGranularity})
	})
	hastmCycles := run(func(m *hastm.Machine) hastm.System {
		cfg := hastm.DefaultConfig(hastm.LineGranularity)
		cfg.SingleThread = true
		return hastm.New(m, cfg)
	})
	fmt.Println("hastm faster:", hastmCycles < stmCycles)
	// Output: hastm faster: true
}
