module hastm.dev/hastm

go 1.22
