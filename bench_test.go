package hastm_test

// One benchmark per table/figure of the paper's evaluation (§7). Each
// benchmark regenerates its figure at reduced size (harness.QuickOptions)
// and reports the figure's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a compact reproduction of the whole evaluation. The cmd/hastm-bench
// binary runs the same experiments at full size.

import (
	"testing"

	"hastm.dev/hastm/internal/harness"
)

func benchFigure(b *testing.B, id string, metrics func(*harness.Report, *testing.B)) {
	b.Helper()
	spec, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	o := harness.QuickOptions()
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep = spec.Run(o)
	}
	if metrics != nil {
		metrics(rep, b)
	}
}

// BenchmarkFig11 regenerates Figure 11 (STM vs lock, 1–16 processors).
func BenchmarkFig11(b *testing.B) {
	benchFigure(b, "fig11", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("bst", "stm", "1"), "stm-1p-x")
		b.ReportMetric(r.MustGet("bst", "stm", "16"), "stm-16p-x")
		b.ReportMetric(r.MustGet("bst", "lock", "16"), "lock-16p-x")
	})
}

// BenchmarkFig12 regenerates Figure 12 (STM execution-time breakdown).
func BenchmarkFig12(b *testing.B) {
	benchFigure(b, "fig12", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("breakdown", "bst", "rdbar"), "bst-rdbar-%")
		b.ReportMetric(r.MustGet("breakdown", "bst", "validate"), "bst-validate-%")
	})
}

// BenchmarkFig13 regenerates Figure 13 (workload loads/reuse analysis).
func BenchmarkFig13(b *testing.B) {
	benchFigure(b, "fig13", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("workload analysis", "moldyn", "% loads"), "moldyn-loads-%")
		b.ReportMetric(r.MustGet("workload analysis", "bp-vision", "load reuse %"), "bpvision-reuse-%")
	})
}

// BenchmarkFig15 regenerates Figure 15 (microbenchmark sweep).
func BenchmarkFig15(b *testing.B) {
	benchFigure(b, "fig15", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("60% cache reuse", "HASTM", "90%"), "hastm-60r-90l-x")
		b.ReportMetric(r.MustGet("60% cache reuse", "Hybrid", "90%"), "hybrid-60r-90l-x")
	})
}

// BenchmarkFig16 regenerates Figure 16 (single-thread TM comparison).
func BenchmarkFig16(b *testing.B) {
	benchFigure(b, "fig16", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("single-thread", "hastm", "btree"), "hastm-btree-x")
		b.ReportMetric(r.MustGet("single-thread", "hytm", "btree"), "hytm-btree-x")
		b.ReportMetric(r.MustGet("single-thread", "stm", "btree"), "stm-btree-x")
	})
}

// BenchmarkFig17 regenerates Figure 17 (HASTM ablation).
func BenchmarkFig17(b *testing.B) {
	benchFigure(b, "fig17", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("ablation", "hastm", "bst"), "hastm-bst-x")
		b.ReportMetric(r.MustGet("ablation", "hastm-cautious", "bst"), "cautious-bst-x")
		b.ReportMetric(r.MustGet("ablation", "hastm-noreuse", "bst"), "noreuse-bst-x")
	})
}

// BenchmarkFig18 regenerates Figure 18 (BST multicore scaling).
func BenchmarkFig18(b *testing.B) {
	benchFigure(b, "fig18", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("bst", "hastm", "4"), "hastm-4c-x")
		b.ReportMetric(r.MustGet("bst", "lock", "4"), "lock-4c-x")
	})
}

// BenchmarkFig19 regenerates Figure 19 (B-tree multicore scaling).
func BenchmarkFig19(b *testing.B) {
	benchFigure(b, "fig19", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("btree", "hastm", "4"), "hastm-4c-x")
		b.ReportMetric(r.MustGet("btree", "stm", "4"), "stm-4c-x")
	})
}

// BenchmarkFig20 regenerates Figure 20 (hashtable multicore scaling).
func BenchmarkFig20(b *testing.B) {
	benchFigure(b, "fig20", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("hashtable", "hastm", "4"), "hastm-4c-x")
	})
}

// BenchmarkFig21 regenerates Figure 21 (BST, HASTM vs naive vs STM).
func BenchmarkFig21(b *testing.B) {
	benchFigure(b, "fig21", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("bst", "hastm", "4"), "hastm-4c-x")
		b.ReportMetric(r.MustGet("bst", "naive-aggressive", "4"), "naive-4c-x")
		b.ReportMetric(r.MustGet("bst", "stm", "4"), "stm-4c-x")
	})
}

// BenchmarkFig22 regenerates Figure 22 (B-tree, HASTM vs naive vs STM).
func BenchmarkFig22(b *testing.B) {
	benchFigure(b, "fig22", func(r *harness.Report, b *testing.B) {
		b.ReportMetric(r.MustGet("btree", "hastm", "4"), "hastm-4c-x")
		b.ReportMetric(r.MustGet("btree", "naive-aggressive", "4"), "naive-4c-x")
		b.ReportMetric(r.MustGet("btree", "stm", "4"), "stm-4c-x")
	})
}
